package shmem

import (
	"fmt"
	"unsafe"

	"nowomp/internal/dsm"
	"nowomp/internal/page"
)

// Typed zero-copy spans. The region codec stores elements as
// little-endian bit patterns, so on a little-endian host a []byte page
// span *is* a valid []T when reinterpreted in place: no per-element
// decode, no staging buffer, just loads and stores at memory speed.
// Three properties make the reinterpretation sound:
//
//   - layout: the codec's little-endian byte order equals the host's,
//     checked once at init (nativeLE);
//   - alignment: page buffers are whole heap-allocated 4 KB blocks, so
//     they are at least 8-byte aligned — the natural alignment of every
//     Element type (complex128 aligns to 8 in Go) — and spans start at
//     element-aligned in-page offsets because regions begin at offset 0
//     and page.Size is a multiple of every element size;
//   - straddling: for the same reason an element never crosses a page
//     boundary, so a span is always a whole number of elements.
//
// On a big-endian host the typed-span accessors refuse loudly rather
// than serve byte-swapped values; the staged Range/Row accessors remain
// correct everywhere.
var nativeLE = func() bool {
	x := uint32(0x01020304)
	return *(*byte)(unsafe.Pointer(&x)) == 0x04
}()

func mustNativeLE() {
	if !nativeLE {
		panic("shmem: typed spans require a little-endian host; use the staged Range accessors")
	}
}

// typedSpan reinterprets an element-aligned byte span as a []T of
// len(b)/elem elements, in place.
func typedSpan[T Element](b []byte, elem int) []T {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/elem)
}

// ReadSpan makes elements [lo,hi) readable and returns a typed
// zero-copy view of the longest in-page run starting at lo, clamped to
// hi: the span-level kernel fast path. Callers loop, advancing lo by
// len(span), exactly like the byte-level dsm.Host.ReadSpan underneath.
// The view aliases page memory and is valid only until the next
// operation on the host; callers must not retain it across accesses,
// faults or synchronisation.
func (a *Array[T]) ReadSpan(m Context, lo, hi int) []T {
	mustContext(m)
	mustNativeLE()
	a.check(lo, hi)
	if lo == hi {
		return nil
	}
	b := m.Host.ReadSpan(a.region.ID, lo*a.elem, (hi-lo)*a.elem, m.Clock)
	return typedSpan[T](b, a.elem)
}

// WriteSpan makes elements [lo,hi) writable (faulted in and twinned)
// and returns a typed zero-copy view of the longest in-page run
// starting at lo, clamped to hi, for in-place read-modify-write: the
// view holds the elements' current values. Same aliasing rules as
// ReadSpan.
func (a *Array[T]) WriteSpan(m Context, lo, hi int) []T {
	mustContext(m)
	mustNativeLE()
	a.check(lo, hi)
	if lo == hi {
		return nil
	}
	b := m.Host.WriteSpan(a.region.ID, lo*a.elem, (hi-lo)*a.elem, m.Clock)
	return typedSpan[T](b, a.elem)
}

// ReadRowSpan is ReadSpan over row i columns [jlo,jhi).
func (mx *Matrix[T]) ReadRowSpan(m Context, i, jlo, jhi int) []T {
	mx.checkRow(i)
	if jlo < 0 || jhi > mx.cols || jlo > jhi {
		panic(fmt.Sprintf("shmem: columns [%d,%d) outside matrix with %d cols", jlo, jhi, mx.cols))
	}
	return mx.arr.ReadSpan(m, i*mx.cols+jlo, i*mx.cols+jhi)
}

// WriteRowSpan is WriteSpan over row i columns [jlo,jhi).
func (mx *Matrix[T]) WriteRowSpan(m Context, i, jlo, jhi int) []T {
	mx.checkRow(i)
	if jlo < 0 || jhi > mx.cols || jlo > jhi {
		panic(fmt.Sprintf("shmem: columns [%d,%d) outside matrix with %d cols", jlo, jhi, mx.cols))
	}
	return mx.arr.WriteSpan(m, i*mx.cols+jlo, i*mx.cols+jhi)
}

// Reader is a reusable fault-aware random-access read view of one
// array: the irregular-access analogue of the span loops. Get resolves
// the element's page with shifts (element sizes and page.Size are
// powers of two), faults it in if the copy is missing or invalid —
// exactly when and only when Array.Get would — and loads the value
// straight from page memory. A Reader embeds the Context it was made
// with and is valid for the same process until the next
// synchronisation point (faults by *other* accessors are fine; the
// page table it indexes is stable for the region's lifetime).
type Reader[T Element] struct {
	pv    dsm.PageView
	n     int
	elem  int
	shift uint // log2(elements per page)
	mask  int  // elements per page - 1
}

// Reader returns a fault-aware random-access read view for the
// process named by m.
func (a *Array[T]) Reader(m Context) Reader[T] {
	mustContext(m)
	mustNativeLE()
	perPage := page.Size / a.elem
	shift := uint(0)
	for 1<<shift != perPage {
		shift++
	}
	return Reader[T]{
		pv:    m.Host.PageView(a.region.ID, m.Clock),
		n:     a.n,
		elem:  a.elem,
		shift: shift,
		mask:  perPage - 1,
	}
}

// Get reads element i through the view.
func (v *Reader[T]) Get(i int) T {
	if uint(i) >= uint(v.n) {
		panicIndex(i, v.n)
	}
	b := v.pv.ReadPage(i >> v.shift)
	// The mask keeps the offset strictly inside the 4 KB page ReadPage
	// returned, so the raw pointer add needs no bounds re-check.
	return *(*T)(unsafe.Add(unsafe.Pointer(unsafe.SliceData(b)), (i&v.mask)*v.elem))
}

func panicIndex(i, n int) {
	panic(fmt.Sprintf("shmem: index %d outside array of %d elements", i, n))
}

// Reader3 bundles three same-shape arrays — a structure-of-arrays
// vector field, like the nbf position components — into one
// fault-aware view: Get3 resolves the page index and in-page offset
// once and serves all three components from it. Faults fire in
// component order (first, second, third), exactly as three Gets would.
type Reader3[T Element] struct {
	p0, p1, p2 dsm.PageView
	n          int
	elem       int
	shift      uint
	mask       int
}

// Readers3 returns a bundled view of three arrays of identical length.
func Readers3[T Element](m Context, a0, a1, a2 *Array[T]) Reader3[T] {
	if a1.n != a0.n || a2.n != a0.n {
		panic(fmt.Sprintf("shmem: Readers3 needs equal lengths, got %d/%d/%d", a0.n, a1.n, a2.n))
	}
	r0 := a0.Reader(m)
	return Reader3[T]{
		p0:    r0.pv,
		p1:    m.Host.PageView(a1.region.ID, m.Clock),
		p2:    m.Host.PageView(a2.region.ID, m.Clock),
		n:     r0.n,
		elem:  r0.elem,
		shift: r0.shift,
		mask:  r0.mask,
	}
}

// Get3 reads element i of all three arrays through the view.
func (v *Reader3[T]) Get3(i int) (T, T, T) {
	if uint(i) >= uint(v.n) {
		panicIndex(i, v.n)
	}
	p := i >> v.shift
	off := (i & v.mask) * v.elem
	b0 := v.p0.ReadPage(p)
	b1 := v.p1.ReadPage(p)
	b2 := v.p2.ReadPage(p)
	return *(*T)(unsafe.Add(unsafe.Pointer(unsafe.SliceData(b0)), off)),
		*(*T)(unsafe.Add(unsafe.Pointer(unsafe.SliceData(b1)), off)),
		*(*T)(unsafe.Add(unsafe.Pointer(unsafe.SliceData(b2)), off))
}
