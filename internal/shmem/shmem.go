// Package shmem provides typed views over DSM shared-memory regions:
// float64 vectors/matrices, complex vectors, and int32 vectors, with
// both element and bulk-row accessors. Bulk accessors amortise the
// page-granularity fault checks over whole rows, which is how the
// compiled OpenMP loop bodies access shared arrays.
//
// Every accessor takes a Context naming the accessing process's address
// space and virtual clock; the same array handle is shared by all
// processes (the Tmk_distribute idiom) while faults and costs accrue to
// the accessing process.
package shmem

import (
	"encoding/binary"
	"fmt"
	"math"

	"nowomp/internal/dsm"
	"nowomp/internal/simtime"
)

// Context is the process view required to touch shared memory.
type Context struct {
	Host  *dsm.Host
	Clock *simtime.Clock
}

func (m Context) valid() bool { return m.Host != nil && m.Clock != nil }

func mustContext(m Context) {
	if !m.valid() {
		panic("shmem: access with zero Context; use the Proc's Mem()")
	}
}

// Float64Array is a shared vector of float64.
type Float64Array struct {
	region *dsm.Region
	n      int
}

// AllocFloat64 allocates a shared float64 vector. Master-only, before
// the first fork, like Tmk_malloc.
func AllocFloat64(c *dsm.Cluster, name string, n int) (*Float64Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shmem: array %q must have positive length, got %d", name, n)
	}
	r, err := c.Alloc(name, n*8)
	if err != nil {
		return nil, err
	}
	return &Float64Array{region: r, n: n}, nil
}

// Len returns the number of elements.
func (a *Float64Array) Len() int { return a.n }

// Region exposes the backing region (checkpoint and test hook).
func (a *Float64Array) Region() *dsm.Region { return a.region }

func (a *Float64Array) check(lo, hi int) {
	if lo < 0 || hi > a.n || lo > hi {
		panic(fmt.Sprintf("shmem: range [%d,%d) outside array %q of %d elements",
			lo, hi, a.region.Name, a.n))
	}
}

// Get reads element i.
func (a *Float64Array) Get(m Context, i int) float64 {
	mustContext(m)
	a.check(i, i+1)
	var b [8]byte
	m.Host.Read(a.region.ID, i*8, b[:], m.Clock)
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Set writes element i.
func (a *Float64Array) Set(m Context, i int, v float64) {
	mustContext(m)
	a.check(i, i+1)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	m.Host.Write(a.region.ID, i*8, b[:], m.Clock)
}

// ReadRange copies elements [lo,hi) into dst, which must have length
// hi-lo.
func (a *Float64Array) ReadRange(m Context, lo, hi int, dst []float64) {
	mustContext(m)
	a.check(lo, hi)
	if len(dst) != hi-lo {
		panic(fmt.Sprintf("shmem: dst has %d elements, want %d", len(dst), hi-lo))
	}
	buf := make([]byte, (hi-lo)*8)
	m.Host.Read(a.region.ID, lo*8, buf, m.Clock)
	decodeFloats(buf, dst)
}

// WriteRange copies src into elements [lo, lo+len(src)).
func (a *Float64Array) WriteRange(m Context, lo int, src []float64) {
	mustContext(m)
	a.check(lo, lo+len(src))
	buf := make([]byte, len(src)*8)
	encodeFloats(src, buf)
	m.Host.Write(a.region.ID, lo*8, buf, m.Clock)
}

func decodeFloats(buf []byte, dst []float64) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
}

func encodeFloats(src []float64, buf []byte) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
}

// Float64Matrix is a shared row-major rows x cols matrix.
type Float64Matrix struct {
	arr  Float64Array
	rows int
	cols int
}

// AllocFloat64Matrix allocates a shared matrix.
func AllocFloat64Matrix(c *dsm.Cluster, name string, rows, cols int) (*Float64Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("shmem: matrix %q needs positive dims, got %dx%d", name, rows, cols)
	}
	a, err := AllocFloat64(c, name, rows*cols)
	if err != nil {
		return nil, err
	}
	return &Float64Matrix{arr: *a, rows: rows, cols: cols}, nil
}

// Rows returns the row count.
func (mx *Float64Matrix) Rows() int { return mx.rows }

// Cols returns the column count.
func (mx *Float64Matrix) Cols() int { return mx.cols }

// Region exposes the backing region.
func (mx *Float64Matrix) Region() *dsm.Region { return mx.arr.region }

func (mx *Float64Matrix) checkRow(i int) {
	if i < 0 || i >= mx.rows {
		panic(fmt.Sprintf("shmem: row %d outside matrix %q with %d rows", i, mx.arr.region.Name, mx.rows))
	}
}

// Get reads element (i, j).
func (mx *Float64Matrix) Get(m Context, i, j int) float64 {
	mx.checkRow(i)
	return mx.arr.Get(m, i*mx.cols+j)
}

// Set writes element (i, j).
func (mx *Float64Matrix) Set(m Context, i, j int, v float64) {
	mx.checkRow(i)
	mx.arr.Set(m, i*mx.cols+j, v)
}

// ReadRow copies row i into dst (length cols).
func (mx *Float64Matrix) ReadRow(m Context, i int, dst []float64) {
	mx.checkRow(i)
	mx.arr.ReadRange(m, i*mx.cols, (i+1)*mx.cols, dst)
}

// WriteRow copies src (length cols) into row i.
func (mx *Float64Matrix) WriteRow(m Context, i int, src []float64) {
	mx.checkRow(i)
	if len(src) != mx.cols {
		panic(fmt.Sprintf("shmem: row has %d elements, want %d", len(src), mx.cols))
	}
	mx.arr.WriteRange(m, i*mx.cols, src)
}

// Complex128Array is a shared vector of complex128, stored as
// interleaved real/imaginary float64 words.
type Complex128Array struct {
	region *dsm.Region
	n      int
}

// AllocComplex128 allocates a shared complex vector.
func AllocComplex128(c *dsm.Cluster, name string, n int) (*Complex128Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shmem: array %q must have positive length, got %d", name, n)
	}
	r, err := c.Alloc(name, n*16)
	if err != nil {
		return nil, err
	}
	return &Complex128Array{region: r, n: n}, nil
}

// Len returns the number of elements.
func (a *Complex128Array) Len() int { return a.n }

// Region exposes the backing region.
func (a *Complex128Array) Region() *dsm.Region { return a.region }

func (a *Complex128Array) check(lo, hi int) {
	if lo < 0 || hi > a.n || lo > hi {
		panic(fmt.Sprintf("shmem: range [%d,%d) outside array %q of %d elements",
			lo, hi, a.region.Name, a.n))
	}
}

// ReadRange copies elements [lo,hi) into dst.
func (a *Complex128Array) ReadRange(m Context, lo, hi int, dst []complex128) {
	mustContext(m)
	a.check(lo, hi)
	if len(dst) != hi-lo {
		panic(fmt.Sprintf("shmem: dst has %d elements, want %d", len(dst), hi-lo))
	}
	buf := make([]byte, (hi-lo)*16)
	m.Host.Read(a.region.ID, lo*16, buf, m.Clock)
	for i := range dst {
		re := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*16:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*16+8:]))
		dst[i] = complex(re, im)
	}
}

// WriteRange copies src into elements [lo, lo+len(src)).
func (a *Complex128Array) WriteRange(m Context, lo int, src []complex128) {
	mustContext(m)
	a.check(lo, lo+len(src))
	buf := make([]byte, len(src)*16)
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[i*16:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(buf[i*16+8:], math.Float64bits(imag(v)))
	}
	m.Host.Write(a.region.ID, lo*16, buf, m.Clock)
}

// Get reads element i.
func (a *Complex128Array) Get(m Context, i int) complex128 {
	var one [1]complex128
	a.ReadRange(m, i, i+1, one[:])
	return one[0]
}

// Set writes element i.
func (a *Complex128Array) Set(m Context, i int, v complex128) {
	a.WriteRange(m, i, []complex128{v})
}

// Int32Array is a shared vector of int32 (partner lists, permutations).
type Int32Array struct {
	region *dsm.Region
	n      int
}

// AllocInt32 allocates a shared int32 vector.
func AllocInt32(c *dsm.Cluster, name string, n int) (*Int32Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shmem: array %q must have positive length, got %d", name, n)
	}
	r, err := c.Alloc(name, n*4)
	if err != nil {
		return nil, err
	}
	return &Int32Array{region: r, n: n}, nil
}

// Len returns the number of elements.
func (a *Int32Array) Len() int { return a.n }

// Region exposes the backing region.
func (a *Int32Array) Region() *dsm.Region { return a.region }

func (a *Int32Array) check(lo, hi int) {
	if lo < 0 || hi > a.n || lo > hi {
		panic(fmt.Sprintf("shmem: range [%d,%d) outside array %q of %d elements",
			lo, hi, a.region.Name, a.n))
	}
}

// ReadRange copies elements [lo,hi) into dst.
func (a *Int32Array) ReadRange(m Context, lo, hi int, dst []int32) {
	mustContext(m)
	a.check(lo, hi)
	if len(dst) != hi-lo {
		panic(fmt.Sprintf("shmem: dst has %d elements, want %d", len(dst), hi-lo))
	}
	buf := make([]byte, (hi-lo)*4)
	m.Host.Read(a.region.ID, lo*4, buf, m.Clock)
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
	}
}

// WriteRange copies src into elements [lo, lo+len(src)).
func (a *Int32Array) WriteRange(m Context, lo int, src []int32) {
	mustContext(m)
	a.check(lo, lo+len(src))
	buf := make([]byte, len(src)*4)
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
	}
	m.Host.Write(a.region.ID, lo*4, buf, m.Clock)
}

// Get reads element i.
func (a *Int32Array) Get(m Context, i int) int32 {
	var one [1]int32
	a.ReadRange(m, i, i+1, one[:])
	return one[0]
}

// Set writes element i.
func (a *Int32Array) Set(m Context, i int, v int32) {
	a.WriteRange(m, i, []int32{v})
}
