// Package shmem provides typed views over DSM shared-memory regions:
// generic vectors (Array[T]) and row-major matrices (Matrix[T]) over
// the Element constraint, with both element and bulk-row accessors.
// Bulk accessors amortise the page-granularity fault checks over whole
// rows, which is how the compiled OpenMP loop bodies access shared
// arrays.
//
// Every accessor takes a Context naming the accessing process's address
// space and virtual clock; the same array handle is shared by all
// processes (the Tmk_distribute idiom) while faults and costs accrue to
// the accessing process.
//
// The legacy typed views (Float64Array, Float32Matrix, ...) are
// aliases of the generic ones and share a single accessor and codec
// implementation; see generic.go.
package shmem

import (
	"nowomp/internal/dsm"
	"nowomp/internal/simtime"
)

// Context is the process view required to touch shared memory.
type Context struct {
	Host  *dsm.Host
	Clock *simtime.Clock
}

func (m Context) valid() bool { return m.Host != nil && m.Clock != nil }

func mustContext(m Context) {
	if !m.valid() {
		panic("shmem: access with zero Context; use the Proc's Mem()")
	}
}

// Legacy typed views, kept so existing kernels compile unchanged. Each
// is an alias of the generic view, not a distinct type.
type (
	// Float64Array is a shared vector of float64.
	Float64Array = Array[float64]
	// Float64Matrix is a shared row-major float64 matrix.
	Float64Matrix = Matrix[float64]
	// Complex128Array is a shared vector of complex128, stored as
	// interleaved real/imaginary float64 words.
	Complex128Array = Array[complex128]
	// Int32Array is a shared vector of int32 (partner lists,
	// permutations).
	Int32Array = Array[int32]
	// Int64Array is a shared vector of int64 (counters, offsets).
	Int64Array = Array[int64]
	// ByteArray is a shared vector of raw bytes. Remember the 8-byte
	// diff-word granularity: concurrent writers must stay 8 bytes
	// apart within an interval.
	ByteArray = Array[uint8]
)

// AllocFloat64 allocates a shared float64 vector. Master-only, before
// the first fork, like Tmk_malloc.
func AllocFloat64(c *dsm.Cluster, name string, n int) (*Float64Array, error) {
	return Alloc[float64](c, name, n)
}

// AllocFloat64Matrix allocates a shared float64 matrix.
func AllocFloat64Matrix(c *dsm.Cluster, name string, rows, cols int) (*Float64Matrix, error) {
	return AllocMatrix[float64](c, name, rows, cols)
}

// AllocComplex128 allocates a shared complex vector.
func AllocComplex128(c *dsm.Cluster, name string, n int) (*Complex128Array, error) {
	return Alloc[complex128](c, name, n)
}

// AllocInt32 allocates a shared int32 vector.
func AllocInt32(c *dsm.Cluster, name string, n int) (*Int32Array, error) {
	return Alloc[int32](c, name, n)
}

// AllocInt64 allocates a shared int64 vector.
func AllocInt64(c *dsm.Cluster, name string, n int) (*Int64Array, error) {
	return Alloc[int64](c, name, n)
}

// AllocBytes allocates a shared byte vector.
func AllocBytes(c *dsm.Cluster, name string, n int) (*ByteArray, error) {
	return Alloc[uint8](c, name, n)
}
