package nowomp_test

import (
	"path/filepath"
	"testing"

	"nowomp"
)

// TestPublicAPIQuickstart exercises the facade end to end: runtime
// construction, shared allocation, parallel loops, adaptation, and
// checkpoint/restore — the README quickstart, as a test.
func TestPublicAPIQuickstart(t *testing.T) {
	rt, err := nowomp.New(nowomp.Config{Hosts: 5, Procs: 3, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := rt.AllocFloat64("v", 4096)
	if err != nil {
		t.Fatal(err)
	}
	rt.ParallelFor("init", 0, a.Len(), func(p *nowomp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for i := range buf {
			buf[i] = float64(lo + i)
		}
		a.WriteRange(p.Mem(), lo, buf)
	})

	// A workstation joins; once its spawn completes the team grows.
	if err := rt.Submit(nowomp.Event{Kind: nowomp.Join, Host: 3, At: rt.Now()}); err != nil {
		t.Fatal(err)
	}
	rt.Parallel("burn", func(p *nowomp.Proc) { p.Charge(1.0) })
	rt.Parallel("tick", func(p *nowomp.Proc) {})
	if rt.NProcs() != 4 {
		t.Fatalf("team = %d, want 4 after join", rt.NProcs())
	}

	sum := rt.ParallelForReduce("sum", 0, a.Len(), 0,
		func(x, y float64) float64 { return x + y },
		func(p *nowomp.Proc, lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a.Get(p.Mem(), i)
			}
			return s
		})
	want := float64(4095) * 4096 / 2
	if sum != want {
		t.Fatalf("sum = %g, want %g", sum, want)
	}

	// Checkpoint and restore through the facade.
	path := filepath.Join(t.TempDir(), "q.ckpt")
	if err := nowomp.Checkpoint(rt, path, map[string]any{"phase": 2}); err != nil {
		t.Fatal(err)
	}
	rt2, restored, err := nowomp.Restore(nowomp.Config{Hosts: 5, Procs: 3, Adaptive: true}, path)
	if err != nil {
		t.Fatal(err)
	}
	var phase int
	if err := restored.State("phase", &phase); err != nil || phase != 2 {
		t.Fatalf("restored phase = %d, err = %v", phase, err)
	}
	b, err := rt2.AllocFloat64("v", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Get(rt2.MasterProc().Mem(), 100); got != 100 {
		t.Fatalf("restored v[100] = %g, want 100", got)
	}
}

func TestFacadeKernels(t *testing.T) {
	rt, err := nowomp.New(nowomp.Config{Hosts: 4, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := nowomp.DefaultJacobi()
	cfg.N, cfg.Iters = 64, 4
	res, err := nowomp.RunJacobi(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "jacobi" || res.Time <= 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	if nowomp.DefaultGauss().N != 3072 || nowomp.DefaultFFT3D().NX != 128 || nowomp.DefaultNBF().Atoms != 131072 {
		t.Fatal("default kernel configs must match the paper")
	}
	if nowomp.DefaultModel().LinkBandwidth != 12.5e6 {
		t.Fatal("default model must be the calibrated 100 Mbps fabric")
	}
	if nowomp.DefaultGrace != 3.0 {
		t.Fatal("default grace must be the paper's 3 s")
	}
}
