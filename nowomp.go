// Package nowomp is the public API of the adaptive OpenMP-on-NOW
// runtime: a reproduction of Scherer, Lu, Gross and Zwaenepoel,
// "Transparent Adaptive Parallelism on NOWs using OpenMP" (PPoPP
// 1999). See the repository README for an overview and DESIGN.md for
// the system inventory.
//
// A minimal program:
//
//	rt, err := nowomp.New(nowomp.Config{Hosts: 8, Procs: 4, Adaptive: true})
//	if err != nil { ... }
//	a, err := nowomp.Alloc[float64](rt, "v", 1<<20)
//	rt.For("scale", 0, a.Len(), func(p *nowomp.Proc, lo, hi int) {
//		buf := make([]float64, hi-lo)
//		a.ReadRange(p.Mem(), lo, hi, buf)
//		for i := range buf { buf[i] *= 2 }
//		a.WriteRange(p.Mem(), lo, buf)
//	})
//
// Workstations join and leave the running computation via Submit;
// iteration re-partitioning is automatic because every For construct
// recomputes its partition from (process id, team size) at the fork,
// exactly like the SUIF-compiled TreadMarks programs of the paper.
package nowomp

import (
	"nowomp/internal/adapt"
	"nowomp/internal/apps"
	"nowomp/internal/ckpt"
	"nowomp/internal/dsm"
	"nowomp/internal/machine"
	"nowomp/internal/omp"
	"nowomp/internal/shmem"
	"nowomp/internal/simnet"
	"nowomp/internal/simtime"
)

// Core runtime types.
type (
	// Config parameterises a runtime; see omp.Config for field
	// documentation.
	Config = omp.Config
	// Runtime executes one OpenMP program on the simulated NOW.
	Runtime = omp.Runtime
	// Proc is the per-process handle passed to parallel bodies.
	Proc = omp.Proc
	// AdaptationPoint records an applied adaptation for measurement.
	AdaptationPoint = omp.AdaptationPoint
)

// Virtual time.
type (
	// Seconds is virtual time; the simulation's clock unit.
	Seconds = simtime.Seconds
	// CostModel holds the calibrated NOW constants (section 5.1).
	CostModel = simtime.CostModel
)

// DefaultModel returns the cost model calibrated from the paper's
// measured constants.
func DefaultModel() CostModel { return simtime.Default() }

// Adaptation events.
type (
	// Event is a join or leave signal.
	Event = adapt.Event
	// EventKind distinguishes joins from leaves.
	EventKind = adapt.Kind
	// ReassignStrategy selects process-id reassignment.
	ReassignStrategy = adapt.ReassignStrategy
	// LeaveStrategy selects the normal-leave state handoff.
	LeaveStrategy = dsm.LeaveStrategy
	// HostID identifies a workstation in the pool.
	HostID = dsm.HostID
)

// Event kinds and strategies, re-exported for configuration.
const (
	Join               = adapt.KindJoin
	Leave              = adapt.KindLeave
	ShiftDown          = adapt.ShiftDown
	SwapLast           = adapt.SwapLast
	LeaveViaMaster     = dsm.LeaveViaMaster
	LeaveDirectHandoff = dsm.LeaveDirectHandoff
)

// DefaultGrace is the paper's 3-second leave grace period.
const DefaultGrace = adapt.DefaultGrace

// Coherence protocols. The DSM's coherence machinery is a pluggable
// layer (Config.Protocol): Tmk is the paper's TreadMarks homeless lazy
// release consistency and the default; HLRC is home-based LRC, where
// every page has a home that writers flush diffs to eagerly and
// readers fetch whole pages from; Hybrid classifies each page's
// sharing pattern and adapts between the two per page. See DESIGN.md
// "Coherence protocols" and "Adaptive coherence".
type (
	// ProtocolKind selects the DSM coherence protocol.
	ProtocolKind = dsm.ProtocolKind
)

// Protocol kinds for Config.Protocol.
const (
	// Tmk is TreadMarks-style homeless lazy release consistency (the
	// default).
	Tmk = dsm.Tmk
	// HLRC is home-based lazy release consistency.
	HLRC = dsm.HLRC
	// Hybrid is the adaptive per-page protocol: sharing-pattern
	// classification, home migration, and single-writer elision on an
	// HLRC-style home-based baseline.
	Hybrid = dsm.Hybrid
)

// ParseProtocol parses a protocol name ("tmk", "hlrc" or "hybrid"), as
// the tools' -protocol flag spells it.
func ParseProtocol(s string) (ProtocolKind, error) { return dsm.ParseProtocol(s) }

// Heterogeneous NOW modelling: per-machine CPU speed factors and
// background-load traces (Config.Machine), per-link overrides
// (Config.Links), and the load policy that derives join/leave events
// from the traces.
type (
	// MachineModel gives each machine a speed factor and a load trace.
	MachineModel = machine.Model
	// LoadTrace is a piecewise-constant background-load trace.
	LoadTrace = machine.Trace
	// LoadStep is one breakpoint of a trace.
	LoadStep = machine.Step
	// MachineID identifies a workstation on the fabric.
	MachineID = simnet.MachineID
	// Fabric is the simulated switched network (Config.Links target).
	Fabric = simnet.Fabric
	// LoadPolicy derives adapt events from load traces.
	LoadPolicy = adapt.LoadPolicy
)

// NewMachineModel returns an all-baseline model for an n-machine pool;
// configure it with SetSpeed/SetLoad or the parsers below.
func NewMachineModel(n int) *MachineModel { return machine.New(n) }

// NewLoadTrace builds a trace from steps with strictly ascending times.
func NewLoadTrace(steps ...LoadStep) (LoadTrace, error) { return machine.NewTrace(steps...) }

// ParseSpeeds applies a compact "ID=FACTOR,..." speed spec to a model.
func ParseSpeeds(m *MachineModel, spec string) error { return machine.ParseSpeeds(m, spec) }

// ParseLoads applies a compact "ID=LOAD@TIME,...;..." trace spec to a
// model.
func ParseLoads(m *MachineModel, spec string) error { return machine.ParseLoads(m, spec) }

// ParseLinks applies a compact "SRC-DST=lat:F,bw:F;..." link spec to a
// fabric (use inside Config.Links).
func ParseLinks(f *Fabric, spec string) error { return machine.ParseLinks(f, spec) }

// ParsePolicy parses a "high=H,low=L[,dwell=D]" load-policy spec.
func ParsePolicy(s string) (LoadPolicy, error) { return adapt.ParsePolicy(s) }

// ParseSchedule parses a "TIME:KIND:HOST[,...]" adapt-event schedule.
func ParseSchedule(s string) ([]Event, error) { return adapt.ParseSchedule(s) }

// FormatSchedule renders events back in ParseSchedule form.
func FormatSchedule(events []Event) string { return adapt.FormatSchedule(events) }

// Shared-memory views. Array and Matrix are the generic views; the
// typed names are aliases kept for existing programs.
type (
	// Mem is the access context carried by a Proc.
	Mem = shmem.Context
	// Element is the constraint on shared-view element types.
	Element = shmem.Element
	// Array is a shared vector of T.
	Array[T Element] = shmem.Array[T]
	// Matrix is a shared row-major matrix of T.
	Matrix[T Element] = shmem.Matrix[T]
	// Float64Array is a shared float64 vector.
	Float64Array = shmem.Float64Array
	// Float32Array is a shared float32 vector.
	Float32Array = shmem.Float32Array
	// Float64Matrix is a shared float64 matrix.
	Float64Matrix = shmem.Float64Matrix
	// Float32Matrix is a shared float32 matrix.
	Float32Matrix = shmem.Float32Matrix
	// Complex128Array is a shared complex vector.
	Complex128Array = shmem.Complex128Array
	// Int32Array is a shared int32 vector.
	Int32Array = shmem.Int32Array
	// Int64Array is a shared int64 vector.
	Int64Array = shmem.Int64Array
	// ByteArray is a shared byte vector.
	ByteArray = shmem.ByteArray
)

// Alloc allocates a shared vector of n elements of T; on a restored
// runtime it rebinds to (and reloads) the checkpointed region instead.
// Go has no generic methods, so the generic allocators take the
// runtime as their first argument; rt.AllocFloat64 and friends remain
// as typed shorthands.
func Alloc[T Element](rt *Runtime, name string, n int) (*Array[T], error) {
	return omp.Alloc[T](rt, name, n)
}

// AllocMatrix allocates a shared rows x cols matrix of T (see Alloc).
func AllocMatrix[T Element](rt *Runtime, name string, rows, cols int) (*Matrix[T], error) {
	return omp.AllocMatrix[T](rt, name, rows, cols)
}

// Loop scheduling. rt.For(name, lo, hi, body, opts...) is the unified
// parallel-loop entry point; these configure it.
type (
	// Schedule identifies an iteration-scheduling policy for For.
	Schedule = omp.Schedule
	// ForOption configures one For construct.
	ForOption = omp.ForOption
)

// Schedules for WithSchedule.
const (
	Static      = omp.Static
	StaticChunk = omp.StaticChunk
	Dynamic     = omp.Dynamic
	Guided      = omp.Guided
)

// WithSchedule selects the iteration schedule of a For construct;
// chunk is the (minimum, for Guided) chunk size.
func WithSchedule(s Schedule, chunk int) ForOption { return omp.WithSchedule(s, chunk) }

// WithReduce attaches a floating-point reduction to a For construct;
// bodies contribute via Proc.Contribute and For returns the combined
// value.
func WithReduce(identity float64, op func(a, b float64) float64) ForOption {
	return omp.WithReduce(identity, op)
}

// Tasking. rt.Tasks(name, root, opts...) runs one work-stealing task
// region: the root task executes on the master, task bodies spawn
// children with p.Spawn and wait for them with p.TaskWait, and idle
// processes steal — with steal traffic, closure shipping and the
// release/acquire consistency of task handoffs all priced through the
// simulated fabric. Task scheduling points are adaptation points, so
// join/leave events apply mid-tree and deques re-home onto the new
// team.
type (
	// TaskProc is the per-process handle passed to task bodies.
	TaskProc = omp.TaskProc
	// TaskOption configures one Tasks region.
	TaskOption = omp.TaskOption
	// TaskStats reports a region's scheduling activity (steals,
	// re-homed tasks, migrated executions, adaptations).
	TaskStats = omp.TaskStats
)

// WithClosureBytes sets the wire size charged for one shipped task
// closure on a steal or re-home.
func WithClosureBytes(n int) TaskOption { return omp.WithClosureBytes(n) }

// Sentinel errors for errors.Is.
var (
	// ErrNotAdaptive reports an adapt event on a non-adaptive runtime.
	ErrNotAdaptive = omp.ErrNotAdaptive
	// ErrRestoreMismatch reports an allocation replay that diverged
	// from the checkpointed sequence.
	ErrRestoreMismatch = omp.ErrRestoreMismatch
)

// New creates a runtime on a fresh simulated NOW.
func New(cfg Config) (*Runtime, error) { return omp.New(cfg) }

// Checkpointing (section 4.3).
type (
	// Restored gives access to application state saved in a checkpoint.
	Restored = ckpt.Restored
)

// Checkpoint writes a checkpoint of the runtime to path at an
// adaptation point; state carries the master program's resumption
// data (for example its outer iteration counter).
func Checkpoint(rt *Runtime, path string, state map[string]any) error {
	_, err := ckpt.SaveFile(rt, path, state)
	return err
}

// Restore rebuilds a runtime from the checkpoint at path. The program
// must replay its allocations and then resume from the restored state.
func Restore(cfg Config, path string) (*Runtime, *Restored, error) {
	return ckpt.RestoreFile(cfg, path)
}

// Application kernels of the paper's evaluation, exposed for examples
// and tools.
type (
	// AppResult summarises one kernel run (Table 1 columns).
	AppResult = apps.Result
	// JacobiConfig parameterises the Jacobi kernel.
	JacobiConfig = apps.JacobiConfig
	// GaussConfig parameterises Gaussian elimination.
	GaussConfig = apps.GaussConfig
	// FFT3DConfig parameterises the 3-D FFT.
	FFT3DConfig = apps.FFT3DConfig
	// NBFConfig parameterises the non-bonded-force kernel.
	NBFConfig = apps.NBFConfig
	// SortConfig parameterises the parallel-mergesort task kernel.
	SortConfig = apps.SortConfig
	// QuadConfig parameterises the adaptive-quadrature task kernel.
	QuadConfig = apps.QuadConfig
)

// Kernel entry points. RunMergesort and RunQuadrature are the
// irregular task-parallel kernels; the rest are the paper's Table 1
// loop kernels.
var (
	RunJacobi     = apps.RunJacobi
	RunGauss      = apps.RunGauss
	RunFFT3D      = apps.RunFFT3D
	RunNBF        = apps.RunNBF
	RunMergesort  = apps.RunMergesort
	RunQuadrature = apps.RunQuadrature

	// MergesortReference and QuadratureReference compute the
	// sequential checksums the task kernels reproduce bit for bit.
	MergesortReference  = apps.MergesortReference
	QuadratureReference = apps.QuadratureReference
)

// Default kernel configurations at the paper's problem sizes.
func DefaultJacobi() JacobiConfig { return apps.DefaultJacobi() }

// DefaultGauss returns the paper's Gauss configuration.
func DefaultGauss() GaussConfig { return apps.DefaultGauss() }

// DefaultFFT3D returns the paper's 3D-FFT configuration.
func DefaultFFT3D() FFT3DConfig { return apps.DefaultFFT3D() }

// DefaultNBF returns the paper's NBF configuration.
func DefaultNBF() NBFConfig { return apps.DefaultNBF() }

// DefaultSort returns the reference mergesort configuration.
func DefaultSort() SortConfig { return apps.DefaultSort() }

// DefaultQuad returns the reference quadrature configuration.
func DefaultQuad() QuadConfig { return apps.DefaultQuad() }
