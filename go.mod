module nowomp

go 1.24
