// Gauss on a shrinking NOW: the introduction's motivating scenario.
// A factorisation starts on eight idle workstations in the evening;
// as owners return one by one, the computation adapts down to four
// processes and still finishes correctly — it is no longer bounded by
// the time any individual workstation stays in the pool.
package main

import (
	"fmt"
	"log"

	"nowomp"
)

func main() {
	rt, err := nowomp.New(nowomp.Config{
		Hosts: 8, Procs: 8, Adaptive: true,
		// Direct handoff (the paper's future-work improvement) spreads
		// each leaver's pages over the remaining hosts instead of
		// funnelling them through the master.
		LeaveStrategy: nowomp.LeaveDirectHandoff,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Owners return at intervals: per-workstation grace periods model
	// different tolerance for sharing (section 3 notes the grace period
	// can be node-specific).
	for i, ev := range []nowomp.Event{
		{Kind: nowomp.Leave, Host: 7, At: 2.0, Grace: 5},
		{Kind: nowomp.Leave, Host: 6, At: 5.0, Grace: 2},
		{Kind: nowomp.Leave, Host: 5, At: 8.0, Grace: 2},
		{Kind: nowomp.Leave, Host: 4, At: 11.0, Grace: 1},
	} {
		if err := rt.Submit(ev); err != nil {
			log.Fatalf("event %d: %v", i, err)
		}
	}

	cfg := nowomp.DefaultGauss()
	cfg.N = 1024 // scaled down; 1.0 = 3072x3072
	res, err := nowomp.RunGauss(rt, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gauss %dx%d factorised while the NOW shrank 8 -> %d workstations\n",
		cfg.N, cfg.N, rt.NProcs())
	for _, ap := range rt.AdaptLog() {
		for _, rec := range ap.Applied {
			fmt.Printf("  t=%5.2fs  owner of host %d returned: %d pages handed off in %.3fs, team -> %v\n",
				float64(ap.When), rec.Event.Host, rec.Transfer.PagesMoved,
				float64(ap.Elapsed), ap.TeamAfter)
		}
	}
	fmt.Printf("virtual runtime %.2fs, traffic %.2f MB\n", float64(res.Time), res.MB())
	fmt.Printf("checksum %.6g — identical on any team-size trajectory\n", res.Checksum)
}
