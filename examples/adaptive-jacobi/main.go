// Adaptive Jacobi: the paper's core scenario. An 8-process Jacobi
// relaxation runs on a NOW while workstations come and go — a leave
// and rejoin mid-run — and the program still produces exactly the
// sequential result. The per-adaptation costs printed at the end are
// the quantities Table 2 reports.
package main

import (
	"fmt"
	"log"

	"nowomp"
)

func main() {
	rt, err := nowomp.New(nowomp.Config{Hosts: 8, Procs: 8, Adaptive: true})
	if err != nil {
		log.Fatal(err)
	}

	cfg := nowomp.DefaultJacobi()
	cfg.N, cfg.Iters = 900, 120 // a scaled-down grid; 1.0 = 2500x2500

	// An operational schedule, as a daemon would generate: workstation
	// 5's owner needs it back a few virtual seconds in, and it becomes
	// available again later.
	if err := rt.Submit(nowomp.Event{Kind: nowomp.Leave, Host: 5, At: 1.2}); err != nil {
		log.Fatal(err)
	}
	if err := rt.Submit(nowomp.Event{Kind: nowomp.Join, Host: 5, At: 2.2}); err != nil {
		log.Fatal(err)
	}

	res, err := nowomp.RunJacobi(rt, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("jacobi %dx%d, %d iterations on a pool of 8 workstations\n", cfg.N, cfg.N, cfg.Iters)
	fmt.Printf("virtual runtime %.2f s, %.1f MB shared, %.2f MB network traffic, %d diffs\n",
		float64(res.Time), float64(res.SharedBytes)/1e6, res.MB(), res.Diffs)

	for _, ap := range rt.AdaptLog() {
		for _, rec := range ap.Applied {
			fmt.Printf("  t=%5.2fs  %-5v host %d  cost %.3fs  %4d pages moved  team -> %v\n",
				float64(ap.When), rec.Event.Kind, rec.Event.Host,
				float64(ap.Elapsed), rec.Transfer.PagesMoved, ap.TeamAfter)
		}
	}
	fmt.Printf("final team: %d processes\n", rt.NProcs())
}
