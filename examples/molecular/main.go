// Molecular dynamics under grace-period pressure: the Figure 2
// trichotomy on the NBF kernel. The same leave event is raised
// mid-phase twice — once with a generous grace period (the computation
// reaches the next adaptation point in time: a cheap normal leave) and
// once with a tight one (the grace expires mid-phase: an urgent leave
// by migration with multiplexing until the adaptation point). The
// result is identical either way; only the cost differs.
package main

import (
	"fmt"
	"log"

	"nowomp"
)

func run(grace nowomp.Seconds) (*nowomp.Runtime, nowomp.AppResult) {
	rt, err := nowomp.New(nowomp.Config{Hosts: 8, Procs: 8, Adaptive: true, Grace: grace})
	if err != nil {
		log.Fatal(err)
	}
	cfg := nowomp.DefaultNBF()
	cfg.Atoms, cfg.Partners, cfg.Iters = 81920, 24, 8

	// Workstation 6's owner returns mid-run. NBF's force phases are
	// the longest of the paper's applications (adaptation points ~2.5 s
	// apart at full scale), which is exactly when grace periods bite.
	if err := rt.Submit(nowomp.Event{Kind: nowomp.Leave, Host: 6, At: 3.0}); err != nil {
		log.Fatal(err)
	}
	res, err := nowomp.RunNBF(rt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return rt, res
}

func describe(label string, rt *nowomp.Runtime, res nowomp.AppResult) {
	fmt.Printf("%s: runtime %.2fs, traffic %.2f MB\n", label, float64(res.Time), res.MB())
	for _, ap := range rt.AdaptLog() {
		for _, rec := range ap.Applied {
			if rec.Urgent {
				fmt.Printf("  URGENT leave of host %d: image %.1f MB migrated in %.2fs, then %d pages handed off\n",
					rec.Event.Host, float64(rec.Plan.ImageBytes)/1e6,
					float64(rec.Plan.Cost), rec.Transfer.PagesMoved)
			} else {
				fmt.Printf("  normal leave of host %d at t=%.2fs: %d pages handed off in %.3fs\n",
					rec.Event.Host, float64(ap.When), rec.Transfer.PagesMoved, float64(ap.Elapsed))
			}
		}
	}
}

func main() {
	rtN, resN := run(30.0) // generous grace: normal leave
	rtU, resU := run(0.01) // tight grace: urgent leave

	describe("grace 30s ", rtN, resN)
	describe("grace 0.01s", rtU, resU)

	if resN.Checksum != resU.Checksum {
		log.Fatalf("results differ: %g vs %g", resN.Checksum, resU.Checksum)
	}
	fmt.Printf("\nboth runs produced identical results (checksum %.6g)\n", resN.Checksum)
	fmt.Printf("urgent leave cost %.2fs more than the normal one — the premium the grace period avoids\n",
		float64(resU.Time-resN.Time))
}
