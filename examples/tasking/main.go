// Tasking: OpenMP 3.0-style tasks on the adaptive NOW. A parallel
// mergesort — recursive divide-and-conquer that loop schedules cannot
// express — runs as one task region: leaves sort locally, interior
// tasks spawn their halves and taskwait before merging, and idle
// workstations steal subtrees (priced steal traffic, not free).
// Mid-sort, one workstation leaves and another joins; the task
// scheduling points double as adaptation points, the departing
// process's deque re-homes onto the survivors, and the sorted result
// is still bit-identical to the sequential reference.
//
// The same region is also written by hand below with Spawn/TaskWait to
// show the API; RunMergesort packages it as a kernel.
package main

import (
	"fmt"
	"log"

	"nowomp"
)

func main() {
	rt, err := nowomp.New(nowomp.Config{Hosts: 8, Procs: 4, Adaptive: true})
	if err != nil {
		log.Fatal(err)
	}

	// An operational schedule: workstation 2 is reclaimed by its owner
	// early on (generous grace), workstation 6 becomes available.
	if err := rt.Submit(nowomp.Event{Kind: nowomp.Leave, Host: 2, At: 0.4, Grace: 60}); err != nil {
		log.Fatal(err)
	}
	if err := rt.Submit(nowomp.Event{Kind: nowomp.Join, Host: 6, At: 0.1}); err != nil {
		log.Fatal(err)
	}

	cfg := nowomp.DefaultSort().Scaled(0.25)
	// Stretch the per-element costs so the region spans the schedule
	// above (the default calibration sorts this size in well under a
	// second of virtual time).
	cfg.CompareCost *= 20
	cfg.MergeCost *= 20

	res, err := nowomp.RunMergesort(rt, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mergesort of %d keys on a pool of 8 workstations\n", cfg.N)
	fmt.Printf("virtual runtime %.2f s, %.1f MB shared, %.2f MB network traffic, %d diffs\n",
		float64(res.Time), float64(res.SharedBytes)/1e6, res.MB(), res.Diffs)

	for _, ap := range rt.AdaptLog() {
		for _, rec := range ap.Applied {
			fmt.Printf("  t=%5.2fs  %-5v host %d  cost %.3fs  %4d pages moved  team -> %v\n",
				float64(ap.When), rec.Event.Kind, rec.Event.Host,
				float64(ap.Elapsed), rec.Transfer.PagesMoved, ap.TeamAfter)
		}
	}
	fmt.Printf("final team: %d processes\n", rt.NProcs())

	if want := nowomp.MergesortReference(cfg); res.Checksum == want {
		fmt.Println("verified: sorted result matches the sequential reference bit for bit")
	} else {
		log.Fatalf("verification FAILED: checksum %g, reference %g", res.Checksum, want)
	}

	// The same construct written by hand: a task region that sums the
	// first n squares by recursive splitting. Spawned halves write
	// into closure variables; TaskWait orders the reads after the
	// children, so l and r combine deterministically.
	rt2, err := nowomp.New(nowomp.Config{Hosts: 4, Procs: 4, Adaptive: true})
	if err != nil {
		log.Fatal(err)
	}
	const n = 1 << 16
	var total float64
	var rec func(tp *nowomp.TaskProc, lo, hi int) float64
	rec = func(tp *nowomp.TaskProc, lo, hi int) float64 {
		if hi-lo <= 1<<12 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i) * float64(i)
			}
			tp.ChargeUnits(hi-lo, 2e-6)
			return s
		}
		mid := lo + (hi-lo)/2
		var l, r float64
		tp.Spawn(func(c *nowomp.TaskProc) { l = rec(c, lo, mid) })
		tp.Spawn(func(c *nowomp.TaskProc) { r = rec(c, mid, hi) })
		tp.TaskWait()
		return l + r
	}
	stats := rt2.Tasks("squares", func(tp *nowomp.TaskProc) { total = rec(tp, 0, n) })
	fmt.Printf("\nsum of squares below %d = %.0f (%d tasks, %d steals, %d migrated executions)\n",
		n, total, stats.Executed, stats.Steals, stats.MigratedExec)
}
