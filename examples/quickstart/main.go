// Quickstart: the smallest complete nowomp program. A four-process
// team fills a shared vector, a fifth workstation joins the running
// computation, and the final reduction runs on the grown team — no
// application code changes, which is the paper's transparency claim.
package main

import (
	"fmt"
	"log"

	"nowomp"
)

func main() {
	rt, err := nowomp.New(nowomp.Config{Hosts: 5, Procs: 4, Adaptive: true})
	if err != nil {
		log.Fatal(err)
	}

	const n = 1 << 16
	v, err := nowomp.Alloc[float64](rt, "v", n)
	if err != nil {
		log.Fatal(err)
	}

	// #pragma omp parallel for — the body receives its block of the
	// iteration space, recomputed from (id, nprocs) at every fork.
	rt.For("fill", 0, n, func(p *nowomp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		for i := range buf {
			buf[i] = float64(lo+i) * 0.5
		}
		v.WriteRange(p.Mem(), lo, buf)
	})
	fmt.Printf("filled %d elements on %d processes\n", n, rt.NProcs())

	// Workstation 4 becomes available. The join takes effect at the
	// first adaptation point after its process has spawned (~0.75 s of
	// virtual time).
	if err := rt.Submit(nowomp.Event{Kind: nowomp.Join, Host: 4, At: rt.Now()}); err != nil {
		log.Fatal(err)
	}
	rt.Parallel("work", func(p *nowomp.Proc) { p.Charge(1.0) })
	rt.Parallel("work", func(p *nowomp.Proc) { p.Charge(1.0) })

	// #pragma omp parallel for reduction(+:sum) — each process folds
	// its block into a partial via Contribute; the master combines the
	// partials deterministically at the join.
	sum := rt.For("sum", 0, n, func(p *nowomp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		v.ReadRange(p.Mem(), lo, hi, buf)
		s := 0.0
		for _, x := range buf {
			s += x
		}
		p.Contribute(s)
	}, nowomp.WithReduce(0, func(a, b float64) float64 { return a + b }))

	fmt.Printf("team grew to %d processes after the join\n", rt.NProcs())
	fmt.Printf("sum = %.1f (want %.1f)\n", sum, 0.5*float64(n-1)*float64(n)/2)
	fmt.Printf("virtual runtime %.2f s, adaptations: %d\n", float64(rt.Now()), len(rt.AdaptLog()))
}
