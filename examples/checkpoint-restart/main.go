// Checkpoint/restart: section 4.3's fault tolerance in one process.
// An iterative solver checkpoints at an adaptation point, the program
// abandons the runtime (the "power flicker"), and a fresh runtime
// restores from the file and finishes. The final result matches an
// uninterrupted run exactly.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nowomp"
)

const (
	n     = 32 * 1024
	iters = 16
)

func step(rt *nowomp.Runtime, acc *nowomp.Array[float64], it int) {
	rt.For("step", 0, n, func(p *nowomp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		acc.ReadRange(p.Mem(), lo, hi, buf)
		for i := range buf {
			buf[i] = buf[i]*0.5 + float64(it)
		}
		acc.WriteRange(p.Mem(), lo, buf)
	})
}

func checksum(rt *nowomp.Runtime, acc *nowomp.Array[float64]) float64 {
	return rt.For("sum", 0, n, func(p *nowomp.Proc, lo, hi int) {
		buf := make([]float64, hi-lo)
		acc.ReadRange(p.Mem(), lo, hi, buf)
		s := 0.0
		for _, v := range buf {
			s += v
		}
		p.Contribute(s)
	}, nowomp.WithReduce(0, func(a, b float64) float64 { return a + b }))
}

func main() {
	cfg := nowomp.Config{Hosts: 4, Procs: 4, Adaptive: true}
	path := filepath.Join(os.TempDir(), "nowomp-example.ckpt")
	defer os.Remove(path)

	// Reference: an uninterrupted run.
	ref, err := nowomp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	refAcc, err := nowomp.Alloc[float64](ref, "acc", n)
	if err != nil {
		log.Fatal(err)
	}
	for it := 0; it < iters; it++ {
		step(ref, refAcc, it)
	}
	want := checksum(ref, refAcc)

	// Interrupted run: checkpoint at iteration 10, then "crash".
	rt, err := nowomp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := nowomp.Alloc[float64](rt, "acc", n)
	if err != nil {
		log.Fatal(err)
	}
	const crashAfter = 10
	for it := 0; it < crashAfter; it++ {
		step(rt, acc, it)
	}
	if err := nowomp.Checkpoint(rt, path, map[string]any{"iter": crashAfter}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed at iteration %d (t=%.2fs); simulating a crash\n", crashAfter, float64(rt.Now()))
	rt, acc = nil, nil // the machine reboots; everything in memory is gone

	// Recovery: restore the master from disk, replay allocations,
	// resume the outer loop where the checkpoint left it.
	rt2, restored, err := nowomp.Restore(cfg, path)
	if err != nil {
		log.Fatal(err)
	}
	var resume int
	if err := restored.State("iter", &resume); err != nil {
		log.Fatal(err)
	}
	acc2, err := nowomp.Alloc[float64](rt2, "acc", n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: resuming at iteration %d with team %v\n", resume, rt2.Team())
	for it := resume; it < iters; it++ {
		step(rt2, acc2, it)
	}
	got := checksum(rt2, acc2)

	if got != want {
		log.Fatalf("restart result %g differs from uninterrupted %g", got, want)
	}
	fmt.Printf("restarted run matches the uninterrupted run exactly (checksum %.6g)\n", got)
}
