package nowomp_test

import (
	"errors"
	"testing"

	"nowomp"
)

// TestGenericPublicAPI exercises the generic facade: Alloc[T],
// AllocMatrix[T], the unified For with schedule and reduce options,
// and the sentinel errors — the README migration-table surface, as a
// test.
func TestGenericPublicAPI(t *testing.T) {
	rt, err := nowomp.New(nowomp.Config{Hosts: 4, Procs: 4, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}

	v, err := nowomp.Alloc[int64](rt, "v", 1024)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := nowomp.AllocMatrix[uint8](rt, "mx", 16, 32)
	if err != nil {
		t.Fatal(err)
	}

	rt.For("fill", 0, v.Len(), func(p *nowomp.Proc, lo, hi int) {
		buf := make([]int64, hi-lo)
		for i := range buf {
			buf[i] = int64(lo+i) * 3
		}
		v.WriteRange(p.Mem(), lo, buf)
	}, nowomp.WithSchedule(nowomp.Guided, 16))

	rt.For("rows", 0, mx.Rows(), func(p *nowomp.Proc, lo, hi int) {
		row := make([]uint8, mx.Cols())
		for i := lo; i < hi; i++ {
			for j := range row {
				row[j] = uint8(i + j)
			}
			mx.WriteRow(p.Mem(), i, row)
		}
	})

	sum := rt.For("sum", 0, v.Len(), func(p *nowomp.Proc, lo, hi int) {
		buf := make([]int64, hi-lo)
		v.ReadRange(p.Mem(), lo, hi, buf)
		s := 0.0
		for _, x := range buf {
			s += float64(x)
		}
		p.Contribute(s)
	}, nowomp.WithSchedule(nowomp.StaticChunk, 64),
		nowomp.WithReduce(0, func(a, b float64) float64 { return a + b }))
	if want := 3 * float64(1023) * 1024 / 2; sum != want {
		t.Fatalf("sum = %g, want %g", sum, want)
	}
	if got := mx.Get(rt.MasterProc().Mem(), 3, 5); got != 8 {
		t.Fatalf("mx(3,5) = %d, want 8", got)
	}

	// A legacy alias handle is the same type as its generic view.
	f64, err := rt.AllocFloat64("legacy", 8)
	if err != nil {
		t.Fatal(err)
	}
	var asGeneric *nowomp.Array[float64] = f64
	asGeneric.Set(rt.MasterProc().Mem(), 0, 2.5)
	if got := f64.Get(rt.MasterProc().Mem(), 0); got != 2.5 {
		t.Fatalf("alias read %v, want 2.5", got)
	}
}

func TestPublicSentinelErrors(t *testing.T) {
	rt, err := nowomp.New(nowomp.Config{Hosts: 2, Procs: 1}) // non-adaptive
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(nowomp.Event{Kind: nowomp.Join, Host: 1}); !errors.Is(err, nowomp.ErrNotAdaptive) {
		t.Fatalf("Submit = %v, want ErrNotAdaptive", err)
	}
}
